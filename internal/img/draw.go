package img

import "math"

// FillRect sets the w×h rectangle with top-left corner (x, y) to v,
// clipped to the image bounds.
func FillRect(g *Gray, x, y, w, h int, v float32) {
	x0, y0, x1, y1 := clipRect(g, x, y, w, h)
	for yy := y0; yy < y1; yy++ {
		row := yy * g.W
		for xx := x0; xx < x1; xx++ {
			g.Pix[row+xx] = v
		}
	}
}

// BlendRect alpha-blends v over the rectangle: p' = p(1−a) + v·a.
func BlendRect(g *Gray, x, y, w, h int, v, a float32) {
	x0, y0, x1, y1 := clipRect(g, x, y, w, h)
	for yy := y0; yy < y1; yy++ {
		row := yy * g.W
		for xx := x0; xx < x1; xx++ {
			g.Pix[row+xx] = g.Pix[row+xx]*(1-a) + v*a
		}
	}
}

func clipRect(g *Gray, x, y, w, h int) (x0, y0, x1, y1 int) {
	x0, y0, x1, y1 = x, y, x+w, y+h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.W {
		x1 = g.W
	}
	if y1 > g.H {
		y1 = g.H
	}
	return x0, y0, x1, y1
}

// FillEllipse sets all pixels inside the axis-aligned ellipse centred at
// (cx, cy) with radii (rx, ry) to v, with antialiased edges.
func FillEllipse(g *Gray, cx, cy, rx, ry float64, v float32) {
	BlendEllipse(g, cx, cy, rx, ry, v, 1)
}

// BlendEllipse alpha-blends v over the ellipse interior; edge pixels get a
// reduced alpha proportional to coverage for a soft boundary.
func BlendEllipse(g *Gray, cx, cy, rx, ry float64, v, a float32) {
	if rx <= 0 || ry <= 0 {
		return
	}
	x0 := int(math.Floor(cx - rx - 1))
	x1 := int(math.Ceil(cx + rx + 1))
	y0 := int(math.Floor(cy - ry - 1))
	y1 := int(math.Ceil(cy + ry + 1))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= g.W {
		x1 = g.W - 1
	}
	if y1 >= g.H {
		y1 = g.H - 1
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			d := math.Sqrt(dx*dx + dy*dy)
			// Coverage ramps from 1 inside to 0 outside over ~1 pixel.
			edge := math.Min(rx, ry)
			cov := (1 - d) * edge
			if cov <= 0 {
				continue
			}
			if cov > 1 {
				cov = 1
			}
			alpha := a * float32(cov)
			i := y*g.W + x
			g.Pix[i] = g.Pix[i]*(1-alpha) + v*alpha
		}
	}
}

// DrawLine draws a 1-pixel line from (x0, y0) to (x1, y1) with value v using
// Bresenham's algorithm, clipped to the image.
func DrawLine(g *Gray, x0, y0, x1, y1 int, v float32) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if g.Bounds(x0, y0) {
			g.Pix[y0*g.W+x0] = v
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawRectOutline draws the 1-pixel border of a rectangle.
func DrawRectOutline(g *Gray, x, y, w, h int, v float32) {
	DrawLine(g, x, y, x+w-1, y, v)
	DrawLine(g, x, y+h-1, x+w-1, y+h-1, v)
	DrawLine(g, x, y, x, y+h-1, v)
	DrawLine(g, x+w-1, y, x+w-1, y+h-1, v)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
