package img

import (
	"math"
	"math/rand"
	"testing"
)

func TestResizeBilinearIdentity(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(1)), 9, 7)
	out := ResizeBilinear(g, 9, 7)
	if mad := g.MeanAbsDiff(out); mad > 1e-6 {
		t.Fatalf("identity resize drift %v", mad)
	}
}

func TestResizeBilinearConstant(t *testing.T) {
	g := NewGray(5, 5)
	g.Fill(0.3)
	for _, size := range [][2]int{{10, 10}, {3, 7}, {1, 1}, {13, 2}} {
		out := ResizeBilinear(g, size[0], size[1])
		for _, v := range out.Pix {
			if math.Abs(float64(v)-0.3) > 1e-6 {
				t.Fatalf("resize to %v broke constant image: %v", size, v)
			}
		}
	}
}

func TestResizeBilinearPreservesMeanApprox(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(5)), 64, 64)
	sm := GaussianBlur(g, 2) // smooth first so sampling error is small
	out := ResizeBilinear(sm, 32, 32)
	if d := math.Abs(sm.Mean() - out.Mean()); d > 0.02 {
		t.Fatalf("mean drift %v after downscale", d)
	}
}

func TestResizeBilinearGradient(t *testing.T) {
	// A linear horizontal ramp stays linear under bilinear resampling.
	g := NewGray(16, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 16; x++ {
			g.Set(x, y, float32(x))
		}
	}
	out := ResizeBilinear(g, 31, 4)
	for x := 1; x < 30; x++ {
		d1 := out.At(x, 1) - out.At(x-1, 1)
		d2 := out.At(x+1, 1) - out.At(x, 1)
		if x > 1 && x < 29 && math.Abs(float64(d1-d2)) > 1e-3 {
			t.Fatalf("ramp not linear at x=%d: steps %v vs %v", x, d1, d2)
		}
	}
}

func TestResizeToZeroAndOne(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(2)), 8, 8)
	if out := ResizeBilinear(g, 0, 5); out.W != 0 || out.H != 5 {
		t.Fatal("zero-width resize wrong shape")
	}
	out := ResizeBilinear(g, 1, 1)
	if out.W != 1 || out.H != 1 {
		t.Fatal("1x1 resize wrong shape")
	}
}

func TestDownsampleHalves(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(3)), 16, 12)
	d := Downsample(g, 1)
	if d.W != 8 || d.H != 6 {
		t.Fatalf("downsample size %dx%d", d.W, d.H)
	}
	// 2x2 box average preserves the global mean exactly for even dims.
	if diff := math.Abs(g.Mean() - d.Mean()); diff > 1e-5 {
		t.Fatalf("mean drift %v", diff)
	}
}

func TestDownsampleNeverBelowOne(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(4)), 5, 3)
	d := Downsample(g, 10)
	if d.W != 1 || d.H != 1 {
		t.Fatalf("deep downsample size %dx%d, want 1x1", d.W, d.H)
	}
}

func TestPyramidLevels(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(6)), 32, 32)
	p := Pyramid(g, 3)
	if len(p) != 4 {
		t.Fatalf("pyramid has %d levels, want 4", len(p))
	}
	wantW := []int{32, 16, 8, 4}
	for i, im := range p {
		if im.W != wantW[i] {
			t.Fatalf("level %d width %d, want %d", i, im.W, wantW[i])
		}
	}
	if p[0] != g {
		t.Fatal("level 0 must be the original image")
	}
}

func TestTranslateInteger(t *testing.T) {
	g := NewGray(8, 8)
	g.Set(3, 3, 1)
	out := Translate(g, 2, 1)
	if out.At(5, 4) != 1 {
		t.Fatalf("pixel did not move to (5,4): %v", out.At(5, 4))
	}
	if out.At(3, 3) != 0 {
		t.Fatalf("source pixel should be vacated, got %v", out.At(3, 3))
	}
}

func TestTranslateFractionalInterpolates(t *testing.T) {
	g := NewGray(8, 1)
	g.Set(3, 0, 1)
	out := Translate(g, 0.5, 0)
	if math.Abs(float64(out.At(3, 0))-0.5) > 1e-6 || math.Abs(float64(out.At(4, 0))-0.5) > 1e-6 {
		t.Fatalf("half-pixel shift: got %v and %v, want 0.5 each", out.At(3, 0), out.At(4, 0))
	}
}

func TestTranslateRoundTrip(t *testing.T) {
	g := GaussianBlur(randomImage(rand.New(rand.NewSource(8)), 32, 32), 1.5)
	out := Translate(Translate(g, 3, -2), -3, 2)
	// Interior pixels should return to their original values.
	var maxErr float64
	for y := 6; y < 26; y++ {
		for x := 6; x < 26; x++ {
			d := math.Abs(float64(g.At(x, y) - out.At(x, y)))
			if d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 1e-5 {
		t.Fatalf("integer translate round trip error %v", maxErr)
	}
}

func TestSampleBilinearCorners(t *testing.T) {
	g := NewGray(2, 2)
	copy(g.Pix, []float32{0, 1, 2, 3})
	if v := SampleBilinear(g, 0, 0); v != 0 {
		t.Fatalf("corner sample %v", v)
	}
	if v := SampleBilinear(g, 0.5, 0.5); math.Abs(float64(v)-1.5) > 1e-6 {
		t.Fatalf("centre sample %v, want 1.5", v)
	}
	if v := SampleBilinear(g, -10, -10); v != 0 {
		t.Fatalf("clamped sample %v, want 0", v)
	}
	if v := SampleBilinear(g, 10, 10); v != 3 {
		t.Fatalf("clamped sample %v, want 3", v)
	}
}
