package img

// Integral is a summed-area table over a grayscale image. Sum[y][x] holds
// the sum of all pixels strictly above and to the left of (x, y), i.e. the
// table has (W+1)×(H+1) entries and Sum(0, ·) = Sum(·, 0) = 0. Sums are kept
// in float64 to stay exact for megapixel 8-bit data.
type Integral struct {
	W, H int
	sum  []float64 // (W+1)*(H+1), row-major
}

// NewIntegral builds the summed-area table of g in a single pass.
func NewIntegral(g *Gray) *Integral {
	w, h := g.W, g.H
	it := &Integral{W: w, H: h, sum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		var rowSum float64
		src := y * w
		dst := (y + 1) * stride
		prev := y * stride
		for x := 0; x < w; x++ {
			rowSum += float64(g.Pix[src+x])
			it.sum[dst+x+1] = it.sum[prev+x+1] + rowSum
		}
	}
	return it
}

// NewSquaredIntegral builds the summed-area table of the per-pixel squares
// of g, used for fast windowed variance.
func NewSquaredIntegral(g *Gray) *Integral {
	w, h := g.W, g.H
	it := &Integral{W: w, H: h, sum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		var rowSum float64
		src := y * w
		dst := (y + 1) * stride
		prev := y * stride
		for x := 0; x < w; x++ {
			v := float64(g.Pix[src+x])
			rowSum += v * v
			it.sum[dst+x+1] = it.sum[prev+x+1] + rowSum
		}
	}
	return it
}

// Sum returns the sum of the w×h rectangle with top-left corner (x, y).
// The rectangle must lie entirely inside the image.
func (it *Integral) Sum(x, y, w, h int) float64 {
	stride := it.W + 1
	a := it.sum[y*stride+x]
	b := it.sum[y*stride+x+w]
	c := it.sum[(y+h)*stride+x]
	d := it.sum[(y+h)*stride+x+w]
	return d - b - c + a
}

// Mean returns the mean of the w×h rectangle with top-left corner (x, y).
func (it *Integral) Mean(x, y, w, h int) float64 {
	n := w * h
	if n == 0 {
		return 0
	}
	return it.Sum(x, y, w, h) / float64(n)
}

// WindowStats returns the mean and variance of the w×h rectangle at (x, y)
// given the plain and squared integral images of the same source.
func WindowStats(plain, squared *Integral, x, y, w, h int) (mean, variance float64) {
	n := float64(w * h)
	if n == 0 {
		return 0, 0
	}
	s := plain.Sum(x, y, w, h)
	s2 := squared.Sum(x, y, w, h)
	mean = s / n
	variance = s2/n - mean*mean
	if variance < 0 { // numeric noise
		variance = 0
	}
	return mean, variance
}
