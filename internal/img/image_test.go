package img

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGrayDimensions(t *testing.T) {
	g := NewGray(7, 3)
	if g.W != 7 || g.H != 3 || len(g.Pix) != 21 {
		t.Fatalf("got %dx%d len %d", g.W, g.H, len(g.Pix))
	}
}

func TestNewGrayPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewGray(-1, 4)
}

func TestGraySetAt(t *testing.T) {
	g := NewGray(4, 4)
	g.Set(2, 3, 0.5)
	if got := g.At(2, 3); got != 0.5 {
		t.Fatalf("At(2,3) = %v, want 0.5", got)
	}
	if got := g.At(3, 2); got != 0 {
		t.Fatalf("At(3,2) = %v, want 0", got)
	}
}

func TestAtClampedEdges(t *testing.T) {
	g := NewGray(3, 2)
	for i := range g.Pix {
		g.Pix[i] = float32(i)
	}
	cases := []struct {
		x, y int
		want float32
	}{
		{-5, 0, 0}, {0, -3, 0}, {10, 0, 2}, {0, 10, 3}, {10, 10, 5}, {1, 1, 4},
	}
	for _, c := range cases {
		if got := g.AtClamped(c.x, c.y); got != c.want {
			t.Errorf("AtClamped(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 1 {
		t.Fatal("Clone shares pixel storage with original")
	}
}

func TestSubImageClipsAndReplicates(t *testing.T) {
	g := NewGray(3, 3)
	for i := range g.Pix {
		g.Pix[i] = float32(i)
	}
	s := g.SubImage(2, 2, 3, 3)
	if s.W != 3 || s.H != 3 {
		t.Fatalf("SubImage size %dx%d", s.W, s.H)
	}
	if s.At(0, 0) != g.At(2, 2) {
		t.Errorf("corner = %v, want %v", s.At(0, 0), g.At(2, 2))
	}
	// Everything past the edge replicates the bottom-right source pixel.
	if s.At(2, 2) != g.At(2, 2) {
		t.Errorf("replicated pixel = %v, want %v", s.At(2, 2), g.At(2, 2))
	}
}

func TestMinMaxMean(t *testing.T) {
	g := NewGray(2, 2)
	copy(g.Pix, []float32{1, -2, 3, 0})
	min, max := g.MinMax()
	if min != -2 || max != 3 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
	if mean := g.Mean(); math.Abs(mean-0.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 0.5", mean)
	}
}

func TestNormalize(t *testing.T) {
	g := NewGray(1, 3)
	copy(g.Pix, []float32{2, 4, 6})
	g.Normalize()
	want := []float32{0, 0.5, 1}
	for i := range want {
		if math.Abs(float64(g.Pix[i]-want[i])) > 1e-6 {
			t.Fatalf("Normalize: got %v, want %v", g.Pix, want)
		}
	}
}

func TestNormalizeConstantImage(t *testing.T) {
	g := NewGray(2, 2)
	g.Fill(7)
	g.Normalize()
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatalf("constant image should normalize to zeros, got %v", v)
		}
	}
}

func TestClamp01(t *testing.T) {
	g := NewGray(1, 3)
	copy(g.Pix, []float32{-1, 0.5, 2})
	g.Clamp01()
	want := []float32{0, 0.5, 1}
	for i := range want {
		if g.Pix[i] != want[i] {
			t.Fatalf("Clamp01: got %v, want %v", g.Pix, want)
		}
	}
}

func TestAbsDiffAndMeanAbsDiff(t *testing.T) {
	a := NewGray(1, 2)
	b := NewGray(1, 2)
	copy(a.Pix, []float32{1, 3})
	copy(b.Pix, []float32{2, 1})
	d := a.AbsDiff(b)
	if d.Pix[0] != 1 || d.Pix[1] != 2 {
		t.Fatalf("AbsDiff = %v", d.Pix)
	}
	if mad := a.MeanAbsDiff(b); math.Abs(mad-1.5) > 1e-9 {
		t.Fatalf("MeanAbsDiff = %v, want 1.5", mad)
	}
}

func TestAbsDiffPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected size-mismatch panic")
		}
	}()
	NewGray(2, 2).AbsDiff(NewGray(3, 2))
}

func TestRGBLumaWeights(t *testing.T) {
	m := NewRGB(1, 1)
	m.Set(0, 0, 1, 0, 0)
	if got := m.Luma().At(0, 0); math.Abs(float64(got)-0.299) > 1e-6 {
		t.Fatalf("red luma = %v, want 0.299", got)
	}
	m.Set(0, 0, 1, 1, 1)
	if got := m.Luma().At(0, 0); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("white luma = %v, want 1", got)
	}
}

func TestGrayToRGBRoundTrip(t *testing.T) {
	g := NewGray(3, 2)
	for i := range g.Pix {
		g.Pix[i] = float32(i) / 10
	}
	back := GrayToRGB(g).Luma()
	if mad := g.MeanAbsDiff(back); mad > 1e-6 {
		t.Fatalf("gray->rgb->luma drift %v", mad)
	}
}

func TestBayerColorAtRGGB(t *testing.T) {
	r := NewRaw(4, 4, 12, BayerRGGB)
	want := map[[2]int]int{{0, 0}: 0, {1, 0}: 1, {0, 1}: 1, {1, 1}: 2}
	for pos, c := range want {
		if got := r.ColorAt(pos[0], pos[1]); got != c {
			t.Errorf("ColorAt(%d,%d) = %d, want %d", pos[0], pos[1], got, c)
		}
	}
}

func TestBayerPatternsCoverAllChannels(t *testing.T) {
	for _, p := range []BayerPattern{BayerRGGB, BayerBGGR, BayerGRBG, BayerGBRG} {
		r := NewRaw(2, 2, 8, p)
		seen := map[int]int{}
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				seen[r.ColorAt(x, y)]++
			}
		}
		if seen[0] != 1 || seen[1] != 2 || seen[2] != 1 {
			t.Errorf("%v: channel counts %v, want 1 R, 2 G, 1 B", p, seen)
		}
	}
}

func TestRawSetSaturates(t *testing.T) {
	r := NewRaw(1, 1, 10, BayerRGGB)
	r.Set(0, 0, 65535)
	if got := r.At(0, 0); got != 1023 {
		t.Fatalf("10-bit saturation: got %d, want 1023", got)
	}
}

func TestRawSizeBytesPacked(t *testing.T) {
	cases := []struct {
		w, h, bits int
		want       int64
	}{
		{3840, 2160, 12, 3840 * 2160 * 12 / 8},
		{2, 1, 12, 3},
		{1, 1, 12, 2}, // 12 bits round up to 2 bytes
		{4, 4, 8, 16},
	}
	for _, c := range cases {
		r := NewRaw(c.w, c.h, c.bits, BayerRGGB)
		if got := r.SizeBytes(); got != c.want {
			t.Errorf("SizeBytes(%dx%d@%d) = %d, want %d", c.w, c.h, c.bits, got, c.want)
		}
	}
}

func TestMosaicDemosaicRoundTrip(t *testing.T) {
	// A smooth image should survive mosaic→demosaic with small error.
	rng := rand.New(rand.NewSource(1))
	m := NewRGB(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			base := float32(x+y) / 64
			m.Set(x, y, base, base*0.8, base*0.6+0.1)
		}
	}
	_ = rng
	raw := Mosaic(m, 12, BayerRGGB)
	back := Demosaic(raw)
	var maxErr float64
	for y := 2; y < 30; y++ { // skip the border where interpolation degrades
		for x := 2; x < 30; x++ {
			r0, g0, b0 := m.At(x, y)
			r1, g1, b1 := back.At(x, y)
			for _, d := range []float32{r0 - r1, g0 - g1, b0 - b1} {
				if e := math.Abs(float64(d)); e > maxErr {
					maxErr = e
				}
			}
		}
	}
	if maxErr > 0.02 {
		t.Fatalf("smooth-image demosaic max error %v, want <= 0.02", maxErr)
	}
}

func TestMosaicQuantizesToBitDepth(t *testing.T) {
	m := NewRGB(2, 2)
	m.Set(0, 0, 1, 1, 1)
	raw := Mosaic(m, 10, BayerRGGB)
	if got := raw.At(0, 0); got != 1023 {
		t.Fatalf("full-scale red sample = %d, want 1023", got)
	}
}

func TestDemosaicPreservesGrayWorld(t *testing.T) {
	// Uniform gray input must demosaic back to the same gray everywhere.
	m := NewRGB(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			m.Set(x, y, 0.5, 0.5, 0.5)
		}
	}
	back := Demosaic(Mosaic(m, 12, BayerGRBG))
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			r, g, b := back.At(x, y)
			for _, v := range []float32{r, g, b} {
				if math.Abs(float64(v)-0.5) > 0.002 {
					t.Fatalf("pixel (%d,%d) = %v,%v,%v; want 0.5", x, y, r, g, b)
				}
			}
		}
	}
}

func TestGammaEncode(t *testing.T) {
	g := NewGray(1, 2)
	copy(g.Pix, []float32{0.25, -1})
	out := GammaEncode(g, 2)
	if math.Abs(float64(out.Pix[0])-0.5) > 1e-6 {
		t.Fatalf("0.25^(1/2) = %v, want 0.5", out.Pix[0])
	}
	if out.Pix[1] != 0 {
		t.Fatalf("negative input should clamp to 0, got %v", out.Pix[1])
	}
}

func TestGammaEncodeIdentity(t *testing.T) {
	// gamma=1 must be the identity for non-negative pixels (property test).
	f := func(vals []float32) bool {
		n := len(vals)
		if n == 0 {
			return true
		}
		g := NewGray(n, 1)
		for i, v := range vals {
			if v < 0 {
				v = -v
			}
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0.5
			}
			g.Pix[i] = v
		}
		out := GammaEncode(g, 1)
		for i := range g.Pix {
			if math.Abs(float64(out.Pix[i]-g.Pix[i])) > 1e-5*math.Max(1, float64(g.Pix[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
