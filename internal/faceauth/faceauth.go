// Package faceauth assembles the paper's first case study (§III): the
// battery-free face-authentication camera. It trains the Viola-Jones
// pre-filter and the 400-8-1 authentication network on synthetic
// identities, then replays security-camera traces through configurable
// pipeline variants — {motion detection?} → {face detection?} → NN — on
// either the SNNAP-style accelerator or a microcontroller baseline,
// accounting energy per frame and authentication accuracy end to end.
package faceauth

import (
	"fmt"
	"math/rand"

	"camsim/internal/energy"
	"camsim/internal/fixed"
	"camsim/internal/img"
	"camsim/internal/motion"
	"camsim/internal/nn"
	"camsim/internal/snnap"
	"camsim/internal/synth"
	"camsim/internal/vj"
)

// BuildOptions sizes the training phase.
type BuildOptions struct {
	TargetSeed  int64 // identity of the enrolled user
	ChipSize    int   // NN input window edge (paper: 20 → 400 inputs)
	Hidden      int   // hidden layer width (paper: 8)
	TrainPos    int   // verification positives
	TrainNeg    int   // verification negatives
	Impostors   int
	CascadePos  int // cascade training faces
	CascadeNeg  int // cascade training non-faces
	TrainEpochs int
	Bits        int // accelerator datapath width
	Seed        int64
}

// DefaultBuildOptions returns the paper's design point with training sizes
// that complete in seconds.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		TargetSeed: 7, ChipSize: 20, Hidden: 8,
		TrainPos: 250, TrainNeg: 250, Impostors: 25,
		CascadePos: 300, CascadeNeg: 600,
		TrainEpochs: 150, Bits: 8, Seed: 1,
	}
}

// System bundles the trained models and hardware models of the camera SoC.
type System struct {
	Opts     BuildOptions
	Cascade  *vj.Cascade
	NetFloat *nn.Network
	NetQuant *fixed.Net
	AccelCfg snnap.Config
	// TestConfusion is the held-out verification accuracy of the quantized
	// network (the E1-style benchmark number).
	TestConfusion nn.Confusion

	MCU       energy.MCUModel
	VJAccel   energy.VJAccelModel
	Stream    energy.StreamAccelModel
	Sensor    energy.SensorModel
	Radio     energy.RadioModel
	Harvester energy.Harvester
}

// authScales and authOffsets define the multi-crop authentication sweep:
// each face candidate is re-cropped at three scales and five offsets so the
// verifier tolerates detector-box misalignment (15 cheap NN inferences per
// candidate — still nanojoules on the accelerator).
var (
	authScales  = []float64{0.85, 1.0, 1.2}
	authOffsets = [][2]float64{{0, 0}, {-0.08, 0}, {0.08, 0}, {0, -0.08}, {0, 0.08}}
)

// Build trains the cascade and the verification network, seeding its RNG
// from opts.Seed. Callers that manage their own deterministic random
// streams (simulation harnesses, the fleet sweeper) should use
// BuildWithRand instead.
func Build(opts BuildOptions) (*System, error) {
	return BuildWithRand(rand.New(rand.NewSource(opts.Seed)), opts)
}

// BuildWithRand trains the cascade and the verification network drawing all
// randomness from the injected rng, so a caller can derive reproducible
// systems from its own seeded stream instead of the package touching any
// global or self-seeded source.
func BuildWithRand(rng *rand.Rand, opts BuildOptions) (*System, error) {
	if opts.ChipSize < 5 || opts.Hidden < 1 {
		return nil, fmt.Errorf("faceauth: invalid topology %d/%d", opts.ChipSize, opts.Hidden)
	}

	// Viola-Jones pre-filter.
	cascadeCfg := vj.DefaultTrainConfig()
	cascadeCfg.Base = opts.ChipSize
	pos := synth.FaceChips(rng, opts.CascadePos, opts.ChipSize)
	neg := synth.NonFaceChips(rng, opts.CascadeNeg, opts.ChipSize)
	cascade, err := vj.Train(rng, pos, neg, cascadeCfg)
	if err != nil {
		return nil, fmt.Errorf("faceauth: cascade training: %w", err)
	}

	// Verification network on the target identity (90/10 protocol).
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: opts.ChipSize, Positives: opts.TrainPos, Negatives: opts.TrainNeg,
		Impostors: opts.Impostors, TrainFrac: 0.9, Hard: false, TargetSeed: opts.TargetSeed,
	})
	inputs := opts.ChipSize * opts.ChipSize
	net := nn.New(rand.New(rand.NewSource(rng.Int63())), inputs, opts.Hidden, 1)
	net.TrainRPROP(nn.ToTrainSamples(set.Train), nn.DefaultRPROP(opts.TrainEpochs))
	quant := fixed.QuantizeNet(net, opts.Bits, nil)

	accelCfg := snnap.DefaultConfig()
	accelCfg.Bits = opts.Bits

	return &System{
		Opts:          opts,
		Cascade:       cascade,
		NetFloat:      net,
		NetQuant:      quant,
		AccelCfg:      accelCfg,
		TestConfusion: nn.Evaluate(set.Test, quant.Predict),
		MCU:           energy.DefaultMCU(),
		VJAccel:       energy.DefaultVJAccel(),
		Stream:        energy.DefaultStreamAccel(),
		Sensor:        energy.DefaultSensor(),
		Radio:         energy.BackscatterRadio(),
		Harvester:     energy.DefaultHarvester(),
	}, nil
}

// PipelineConfig selects which optional blocks run and on what hardware.
type PipelineConfig struct {
	UseMotion bool // B1: motion-detection gate
	UseVJ     bool // B2: face-detection pre-filter + localization
	UseAccel  bool // run the NN on the SNNAP accelerator (else MCU software)
	// OffloadRaw replaces all in-camera processing with raw-frame
	// transmission over the radio (the WISPCam baseline).
	OffloadRaw bool
}

// Label renders a short config name for tables.
func (c PipelineConfig) Label() string {
	if c.OffloadRaw {
		return "offload-raw"
	}
	s := ""
	if c.UseMotion {
		s += "MD+"
	}
	if c.UseVJ {
		s += "VJ+"
	}
	s += "NN"
	if c.UseAccel {
		s += "(accel)"
	} else {
		s += "(MCU)"
	}
	return s
}

// TraceReport aggregates one trace replay.
type TraceReport struct {
	Config PipelineConfig
	Frames int

	MotionPassed int // frames past the motion gate
	VJRan        int // frames where the detector ran
	VJPassed     int // frames with at least one candidate
	NNRuns       int // NN inferences executed

	Confusion nn.Confusion // per-frame target-present decisions

	Energy         energy.Energy // total across the trace
	EnergyPerFrame energy.Energy
	AveragePower   energy.Power // at the trace's 1 FPS rate
	SustainableFPS float64      // on the harvested supply
}

// RunTrace replays a security trace through the configured pipeline.
func (s *System) RunTrace(tr *synth.Trace, cfg PipelineConfig) TraceReport {
	rep := TraceReport{Config: cfg, Frames: tr.Cfg.Frames}
	det := motion.New(motion.DefaultConfig())
	dp := vj.DefaultDetectParams()
	dp.StepSize = 2
	dp.MinNeighbors = 1 // pre-filter: favour recall, the NN rejects impostors

	var total energy.Energy
	for f := 0; f < tr.Cfg.Frames; f++ {
		frame, truth := tr.Frame(f)
		total += s.Sensor.CaptureEnergy(frame.W, frame.H)

		if cfg.OffloadRaw {
			// Ship the 8-bit frame; the "decision" happens in the cloud and
			// is assumed perfect (computation there is free, per §II).
			total += s.Radio.TransmitEnergy(int64(frame.W * frame.H))
			rep.accumulate(truth.TargetPresent, truth.TargetPresent)
			continue
		}

		pixels := frame.W * frame.H
		if cfg.UseMotion {
			// Streaming frame-difference engine at the sensor vs software.
			if cfg.UseAccel {
				total += energy.Energy(pixels) * s.Stream.MotionPerPixel
			} else {
				total += s.MCU.PixelOpEnergy(motion.PixelOps(frame.W, frame.H))
			}
			r := det.Step(frame)
			if f == 0 {
				// Background priming frame: no decision possible.
				rep.accumulate(false, truth.TargetPresent)
				continue
			}
			if !r.Motion {
				rep.accumulate(false, truth.TargetPresent)
				continue
			}
		}
		rep.MotionPassed++

		var chips []*img.Gray
		addCrop := func(x, y, w int) {
			chips = append(chips, img.ResizeBilinear(frame.SubImage(x, y, w, w), s.Opts.ChipSize, s.Opts.ChipSize))
			if cfg.UseAccel {
				total += energy.Energy(w*w) * s.Stream.ScalePerPixel
			} else {
				total += s.MCU.PixelOpEnergy(w * w)
			}
		}
		if cfg.UseVJ {
			rep.VJRan++
			boxes, st := s.Cascade.Detect(frame, dp)
			if cfg.UseAccel {
				total += s.VJAccel.DetectEnergy(pixels, st.FeatureEvals)
			} else {
				total += s.MCU.MCUDetectEnergy(pixels, st.FeatureEvals)
			}
			if len(boxes) == 0 {
				rep.accumulate(false, truth.TargetPresent)
				continue
			}
			rep.VJPassed++
			for _, b := range boxes {
				for _, sc := range authScales {
					for _, off := range authOffsets {
						w := int(float64(b.W) * sc)
						x := b.X + int(float64(b.W)*off[0]) + (b.W-w)/2
						y := b.Y + int(float64(b.H)*off[1]) + (b.H-w)/2
						addCrop(x, y, w)
					}
				}
			}
		} else {
			// Without localization the NN sees the downsampled whole frame.
			chips = []*img.Gray{img.ResizeBilinear(frame, s.Opts.ChipSize, s.Opts.ChipSize)}
			if cfg.UseAccel {
				total += energy.Energy(pixels) * s.Stream.ScalePerPixel
			} else {
				total += s.MCU.PixelOpEnergy(pixels)
			}
		}

		authenticated := false
		for _, chip := range chips {
			rep.NNRuns++
			in := nn.FlattenChip(chip)
			if cfg.UseAccel {
				out, simRep, err := snnap.Run(s.NetQuant, in, s.AccelCfg)
				if err != nil {
					panic(err) // construction guarantees bit widths match
				}
				total += simRep.Energy
				if out[0] > 0.5 {
					authenticated = true
				}
			} else {
				e, _ := s.MCU.InferenceEnergy(s.NetFloat.NumMACs(), s.Opts.Hidden+1)
				total += e
				if s.NetQuant.Predict(in) {
					authenticated = true
				}
			}
		}
		rep.accumulate(authenticated, truth.TargetPresent)
	}

	rep.Energy = total
	rep.EnergyPerFrame = total / energy.Energy(rep.Frames)
	rep.AveragePower = rep.EnergyPerFrame.Average(1) // trace is 1 FPS
	rep.SustainableFPS = s.Harvester.SustainableFPS(rep.EnergyPerFrame)
	return rep
}

func (r *TraceReport) accumulate(decision, truth bool) {
	switch {
	case decision && truth:
		r.Confusion.TP++
	case decision && !truth:
		r.Confusion.FP++
	case !decision && truth:
		r.Confusion.FN++
	default:
		r.Confusion.TN++
	}
}
