package faceauth

import (
	"sync"
	"testing"

	"camsim/internal/energy"
	"camsim/internal/synth"
)

// Shared trained system: building trains a cascade and an NN, the
// expensive part of this suite.
var (
	sysOnce sync.Once
	sys     *System
	sysErr  error
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		opts := DefaultBuildOptions()
		sys, sysErr = Build(opts)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sys
}

func testTrace() *synth.Trace {
	cfg := synth.DefaultTraceConfig(250)
	cfg.VisitRate = 4
	return synth.NewTrace(33, cfg)
}

func TestBuildValidates(t *testing.T) {
	opts := DefaultBuildOptions()
	opts.ChipSize = 2
	if _, err := Build(opts); err == nil {
		t.Fatal("accepted tiny chip size")
	}
}

func TestBuildProducesWorkingModels(t *testing.T) {
	s := testSystem(t)
	if s.Cascade == nil || s.NetQuant == nil {
		t.Fatal("missing models")
	}
	if s.NetFloat.Topology() != "400-8-1" {
		t.Fatalf("topology %q, want 400-8-1 (the paper's design point)", s.NetFloat.Topology())
	}
	// Held-out verification error should be small on easy captures
	// (the paper reports 5.9% on the harder LFW protocol).
	if e := s.TestConfusion.Error(); e > 0.15 {
		t.Fatalf("held-out verification error %v too high", e)
	}
}

func TestConfigLabels(t *testing.T) {
	cases := map[string]PipelineConfig{
		"offload-raw":     {OffloadRaw: true},
		"NN(MCU)":         {},
		"NN(accel)":       {UseAccel: true},
		"MD+NN(accel)":    {UseMotion: true, UseAccel: true},
		"MD+VJ+NN(accel)": {UseMotion: true, UseVJ: true, UseAccel: true},
	}
	for want, cfg := range cases {
		if got := cfg.Label(); got != want {
			t.Fatalf("Label() = %q, want %q", got, want)
		}
	}
}

func TestProgressiveFilteringReducesEnergy(t *testing.T) {
	// The paper's E6 finding: the motion gate pays for itself by filtering
	// frames away from the *expensive* downstream block (face detection) —
	// on both the accelerator and the MCU — and the accelerator beats the
	// MCU at every configuration.
	s := testSystem(t)
	tr := testTrace()

	for _, accel := range []bool{false, true} {
		vjOnly := s.RunTrace(tr, PipelineConfig{UseVJ: true, UseAccel: accel})
		gated := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: accel})
		if gated.Energy >= vjOnly.Energy {
			t.Fatalf("accel=%v: motion gating increased energy: %v vs %v",
				accel, gated.Energy, vjOnly.Energy)
		}
	}

	nnMCU := s.RunTrace(tr, PipelineConfig{})
	nnAccel := s.RunTrace(tr, PipelineConfig{UseAccel: true})
	if nnAccel.Energy >= nnMCU.Energy {
		t.Fatalf("accelerator (%v) not below MCU (%v)", nnAccel.Energy, nnMCU.Energy)
	}

	fullMCU := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true})
	fullAccel := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	if float64(fullAccel.Energy) > 0.5*float64(fullMCU.Energy) {
		t.Fatalf("full accelerated pipeline (%v) should be well below the MCU pipeline (%v)",
			fullAccel.Energy, fullMCU.Energy)
	}
}

func TestVJImprovesAccuracyOverWholeFrameNN(t *testing.T) {
	// Localization is what makes the NN usable: whole-frame inputs miss
	// the target, VJ-cropped chips catch it (the paper's 0% true-miss
	// result on the multi-stage pipeline).
	s := testSystem(t)
	tr := testTrace()
	whole := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseAccel: true})
	localized := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	if localized.Confusion.MissRate() > whole.Confusion.MissRate() {
		t.Fatalf("VJ localization raised miss rate: %v vs %v",
			localized.Confusion.MissRate(), whole.Confusion.MissRate())
	}
	// The paper reports a 0% true-miss rate on its real-data workload;
	// we tolerate a small residual on the synthetic trace.
	if localized.Confusion.MissRate() > 0.15 {
		t.Fatalf("multi-stage miss rate %v too high (confusion %+v)",
			localized.Confusion.MissRate(), localized.Confusion)
	}
}

func TestFullPipelineSubMilliwattAndSustainable(t *testing.T) {
	s := testSystem(t)
	tr := testTrace()
	rep := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	if rep.AveragePower >= 1*energy.Milliwatt {
		t.Fatalf("average power %v not sub-mW", rep.AveragePower)
	}
	if rep.SustainableFPS < 1 {
		t.Fatalf("harvested supply sustains only %v FPS, want >= 1", rep.SustainableFPS)
	}
}

func TestOffloadCostsMoreThanInCamera(t *testing.T) {
	// E7: shipping raw frames over the radio costs more than deciding
	// in-camera with the full accelerated pipeline.
	s := testSystem(t)
	tr := testTrace()
	off := s.RunTrace(tr, PipelineConfig{OffloadRaw: true})
	in := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	if in.Energy >= off.Energy {
		t.Fatalf("in-camera (%v) not cheaper than offload (%v)", in.Energy, off.Energy)
	}
}

func TestMotionGateCountsConsistent(t *testing.T) {
	s := testSystem(t)
	tr := testTrace()
	rep := s.RunTrace(tr, PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	if rep.MotionPassed > rep.Frames {
		t.Fatalf("counts inconsistent: %+v", rep)
	}
	if rep.VJRan != rep.MotionPassed {
		t.Fatalf("VJ ran %d times but %d frames passed motion", rep.VJRan, rep.MotionPassed)
	}
	if rep.VJPassed > rep.VJRan || rep.NNRuns < rep.VJPassed {
		t.Fatalf("counts inconsistent: %+v", rep)
	}
	// The filtering property: most frames never reach VJ.
	if float64(rep.MotionPassed) > 0.6*float64(rep.Frames) {
		t.Fatalf("motion gate passed %d of %d frames — not filtering", rep.MotionPassed, rep.Frames)
	}
	st := tr.Stats()
	total := rep.Confusion.TP + rep.Confusion.FP + rep.Confusion.TN + rep.Confusion.FN
	if total != st.Frames {
		t.Fatalf("decisions %d != frames %d", total, st.Frames)
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	s := testSystem(t)
	tr := testTrace()
	cfg := PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true}
	a := s.RunTrace(tr, cfg)
	b := s.RunTrace(tr, cfg)
	if a.Energy != b.Energy || a.Confusion != b.Confusion || a.NNRuns != b.NNRuns {
		t.Fatal("trace replay not deterministic")
	}
}
