// Benchmarks regenerating the computational kernels behind every table and
// figure of the paper (one benchmark family per experiment ID; see
// DESIGN.md §4). Run with:
//
//	go test -bench=. -benchmem .
package camsim_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"camsim/internal/bilateral"
	"camsim/internal/compress"
	"camsim/internal/core"
	"camsim/internal/fixed"
	"camsim/internal/fleet"
	"camsim/internal/img"
	"camsim/internal/nn"
	"camsim/internal/platform"
	"camsim/internal/quality"
	"camsim/internal/rig"
	"camsim/internal/snnap"
	"camsim/internal/stereo"
	"camsim/internal/synth"
	"camsim/internal/vj"
	"camsim/internal/vr"
)

// --- shared fixtures (trained once) ---

var (
	fixOnce    sync.Once
	fixNet     *nn.Network
	fixCascade *vj.Cascade
	fixScene   synth.DetectionScene
)

func fixtures(b *testing.B) (*nn.Network, *vj.Cascade, synth.DetectionScene) {
	b.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
			Size: 20, Positives: 120, Negatives: 120, Impostors: 15,
			TrainFrac: 0.9, TargetSeed: 7,
		})
		fixNet = nn.New(rand.New(rand.NewSource(43)), 400, 8, 1)
		fixNet.TrainRPROP(nn.ToTrainSamples(set.Train), nn.DefaultRPROP(60))

		var err error
		fixCascade, err = vj.Train(rng,
			synth.FaceChips(rng, 200, 20), synth.NonFaceChips(rng, 400, 20),
			vj.DefaultTrainConfig())
		if err != nil {
			panic(err)
		}
		fixScene = synth.BuildDetectionScene(rng, synth.SceneConfig{
			W: 160, H: 120, MaxFaces: 2, MinSize: 24, MaxSize: 44,
			Clutter: 4, ForceFace: true,
		})
	})
	return fixNet, fixCascade, fixScene
}

// BenchmarkE1NNTopology measures the quantized inference kernel for each
// topology of the E1 sweep (accuracy comes from the camsim nn-topology
// command; the benchmark tracks the per-inference computational cost).
func BenchmarkE1NNTopology(b *testing.B) {
	for _, topo := range [][3]int{{25, 4, 1}, {100, 8, 1}, {400, 8, 1}, {400, 16, 1}} {
		name := fmt.Sprintf("%d-%d-%d", topo[0], topo[1], topo[2])
		b.Run(name, func(b *testing.B) {
			n := nn.New(rand.New(rand.NewSource(1)), topo[0], topo[1], topo[2])
			q := fixed.QuantizeNet(n, 8, nil)
			in := make([]float64, topo[0])
			rep := snnap.MustSimulate(n.Sizes, snnap.DefaultConfig())
			b.ReportMetric(float64(rep.Energy)*1e12, "modelpJ/inf")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Forward(in)
			}
		})
	}
}

// BenchmarkE2PESweep measures the accelerator simulator across geometries
// and reports the modelled energy per inference (the Fig.-less §III-A
// geometry exploration; minimum at 8 PEs).
func BenchmarkE2PESweep(b *testing.B) {
	for _, pes := range []int{1, 4, 8, 32} {
		b.Run(fmt.Sprintf("PEs%d", pes), func(b *testing.B) {
			cfg := snnap.DefaultConfig()
			cfg.PEs = pes
			var rep snnap.Report
			for i := 0; i < b.N; i++ {
				rep = snnap.MustSimulate([]int{400, 8, 1}, cfg)
			}
			b.ReportMetric(float64(rep.Energy)*1e12, "modelpJ/inf")
		})
	}
}

// BenchmarkE3Bitwidth measures quantized inference at each datapath width.
func BenchmarkE3Bitwidth(b *testing.B) {
	net, _, _ := fixtures(b)
	in := make([]float64, 400)
	for _, bits := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			q := fixed.QuantizeNet(net, bits, nil)
			cfg := snnap.DefaultConfig()
			cfg.Bits = bits
			rep := snnap.MustSimulate(net.Sizes, cfg)
			b.ReportMetric(float64(rep.Energy)*1e12, "modelpJ/inf")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Forward(in)
			}
		})
	}
}

// BenchmarkE5VJParams measures detection across the Fig. 4c parameter
// sweep, reporting the windows each operating point evaluates.
func BenchmarkE5VJParams(b *testing.B) {
	_, cascade, scene := fixtures(b)
	cases := []struct {
		name string
		p    vj.DetectParams
	}{
		{"scale1.25step4", vj.DetectParams{ScaleFactor: 1.25, StepSize: 4, MinNeighbors: 2}},
		{"scale2.00step4", vj.DetectParams{ScaleFactor: 2.0, StepSize: 4, MinNeighbors: 2}},
		{"scale1.25step16", vj.DetectParams{ScaleFactor: 1.25, StepSize: 16, MinNeighbors: 2}},
		{"adaptive0.3", vj.DetectParams{ScaleFactor: 1.25, StepSize: 4, AdaptiveStep: 0.3, MinNeighbors: 2}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var st vj.DetectStats
			for i := 0; i < b.N; i++ {
				_, st = cascade.Detect(scene.Image, c.p)
			}
			b.ReportMetric(float64(st.Windows), "windows")
			b.ReportMetric(float64(st.FeatureEvals), "features")
		})
	}
}

// BenchmarkE6FaceAuthPipeline measures the per-frame cost of the pipeline
// stages on a motion frame (capture → MD → VJ → multi-crop NN).
func BenchmarkE6FaceAuthPipeline(b *testing.B) {
	net, cascade, scene := fixtures(b)
	q := fixed.QuantizeNet(net, 8, nil)
	p := vj.DefaultDetectParams()
	p.StepSize = 2
	p.MinNeighbors = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxes, _ := cascade.Detect(scene.Image, p)
		for _, box := range boxes {
			chip := img.ResizeBilinear(scene.Image.SubImage(box.X, box.Y, box.W, box.H), 20, 20)
			q.Forward(nn.FlattenChip(chip))
		}
	}
}

// BenchmarkE8BilateralFilter measures the Fig. 6 splat-blur-slice kernel.
func BenchmarkE8BilateralFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := img.NewGray(256, 128)
	for i := range g.Pix {
		g.Pix[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bilateral.Filter(g, g, 8, 16, 2)
	}
}

// BenchmarkE9GridSweep measures BSSA at the Fig. 7 grid design points.
func BenchmarkE9GridSweep(b *testing.B) {
	r := rig.NewRig(rand.New(rand.NewSource(9)), 4, 192, 96, 0.75, 3)
	left, right, _ := r.Pair(0)
	for _, cell := range []float64{4, 16, 64} {
		b.Run(fmt.Sprintf("cell%.0f", cell), func(b *testing.B) {
			cfg := bilateral.DefaultBSSAConfig(r.MaxDisparity())
			cfg.CellXY = cell
			var st bilateral.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = bilateral.Solve(left, right, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.GridBytes), "gridB")
		})
	}
}

// BenchmarkE10BlockProfile times each VR pipeline block separately — the
// measured Go analogue of Fig. 9's compute distribution (B3 dominates).
func BenchmarkE10BlockProfile(b *testing.B) {
	r := rig.NewRig(rand.New(rand.NewSource(10)), 4, 192, 96, 0.75, 3)
	view0, view1 := r.RawPair(0)
	raw := vr.CaptureFrame(view0)
	pre0 := vr.Preprocess(raw)
	pre1 := vr.Preprocess(vr.CaptureFrame(view1))
	left, right, _ := r.Pair(0)
	bssaCfg := bilateral.DefaultBSSAConfig(r.MaxDisparity())
	disp, _, err := bilateral.Solve(left, right, bssaCfg)
	if err != nil {
		b.Fatal(err)
	}
	views := []*img.Gray{pre0, pre1, pre0, pre1}
	disparities := []*img.Gray{disp, disp}

	b.Run("B1_preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vr.Preprocess(raw)
		}
	})
	b.Run("B2_align", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vr.Align(pre0, pre1, int(r.PanSpacing), 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("B3_depth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bilateral.Solve(left, right, bssaCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("B4_stitch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vr.Stitch(views, disparities, vr.StitchConfig{
				PanSpacing: r.PanSpacing, ParallaxCompensate: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11PipelineConfigs measures the cost-framework evaluation of
// all Fig. 10 placements (the decision procedure itself).
func BenchmarkE11PipelineConfigs(b *testing.B) {
	p := paperPipeline()
	placements := p.Enumerate([]string{"CPU", "GPU", "FPGA"})
	link := platform.Ethernet25G.BytesPerSecond()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pl := range placements {
			if _, err := p.Evaluate(pl, link); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE12Table1 measures the FPGA resource calculator.
func BenchmarkE12Table1(b *testing.B) {
	z := platform.Zynq7020()
	v := platform.VirtexUltraScalePlus()
	for i := 0; i < b.N; i++ {
		z.Utilization(z.MaxComputeUnits())
		v.Utilization(v.MaxComputeUnits())
	}
}

// BenchmarkE13LinkSweep measures the best-placement search across uplink
// bandwidths.
func BenchmarkE13LinkSweep(b *testing.B) {
	p := paperPipeline()
	placements := p.Enumerate([]string{"CPU", "GPU", "FPGA"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gbps := range []float64{1, 10, 25, 100, 400} {
			if _, err := p.Best(placements, gbps*1e9/8); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE14StereoBaseline compares BSSA against block matching on the
// same pair (the quality numbers come from camsim stereo-baseline).
func BenchmarkE14StereoBaseline(b *testing.B) {
	r := rig.NewRig(rand.New(rand.NewSource(14)), 4, 192, 96, 0.75, 3)
	left, right, _ := r.Pair(0)
	maxD := r.MaxDisparity()
	b.Run("blockmatch", func(b *testing.B) {
		cfg := stereo.Config{MaxDisparity: maxD, WindowRadius: 3}
		for i := 0; i < b.N; i++ {
			stereo.BlockMatch(left, right, cfg)
		}
	})
	b.Run("bssa", func(b *testing.B) {
		cfg := bilateral.DefaultBSSAConfig(maxD)
		for i := 0; i < b.N; i++ {
			if _, _, err := bilateral.Solve(left, right, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMSSSIM measures the Fig. 7 quality metric itself.
func BenchmarkMSSSIM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := img.NewGray(256, 128)
	y := img.NewGray(256, 128)
	for i := range x.Pix {
		x.Pix[i] = rng.Float32()
		y.Pix[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quality.MSSSIM(x, y)
	}
}

// paperPipeline rebuilds the Fig. 10 pipeline for the framework benches.
func paperPipeline() *core.ThroughputPipeline {
	m := vr.PaperByteModel()
	tp := platform.PaperThroughput()
	fps := func(block int, devs ...platform.Device) map[string]float64 {
		out := map[string]float64{}
		for _, d := range devs {
			out[d.String()] = tp.BlockFPS(block, d)
		}
		return out
	}
	return &core.ThroughputPipeline{
		SensorBytes: m.Sensor,
		Stages: []core.Stage{
			{Name: "B1", OutputBytes: m.B1, FPS: fps(1, platform.CPU)},
			{Name: "B2", OutputBytes: m.B2, FPS: fps(2, platform.CPU)},
			{Name: "B3", OutputBytes: m.B3, FPS: fps(3, platform.CPU, platform.GPU, platform.FPGA)},
			{Name: "B4", OutputBytes: m.B4, FPS: fps(4, platform.CPU, platform.GPU, platform.FPGA)},
		},
	}
}

// BenchmarkFleetSweep measures the fleet simulator's hot path: a
// 1000-camera mixed fleet (face-auth + VR) swept over the three Fig. 10
// VR placements on a shared fair-share uplink, one full sweep per
// iteration across the worker pool.
func BenchmarkFleetSweep(b *testing.B) {
	placements := []core.Placement{
		{},
		{InCamera: 3, Impl: []string{"CPU", "CPU", "FPGA"}},
		{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}},
	}
	var scenarios []fleet.Scenario
	for _, pl := range placements {
		vrClass, err := fleet.VRClass(250, pl, 30)
		if err != nil {
			b.Fatal(err)
		}
		scenarios = append(scenarios, fleet.Scenario{
			Name:     "bench-" + vrClass.Name,
			Seed:     1,
			Duration: 5,
			Uplink:   fleet.UplinkConfig{Gbps: 10, Contention: fleet.ContentionFairShare},
			Classes:  []fleet.Class{fleet.FaceAuthClass(750), vrClass},
		})
	}
	var frames int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range fleet.Sweep(scenarios, 0) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			frames += o.Result.Total.Captured
		}
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/sweep")
}

// BenchmarkTopologySweep measures the tiered simulator end to end: the
// congested two-gateway fleet behind `camsim topo`, swept over the three
// placement policies (static baseline plus the two adaptive controllers),
// one full sweep per iteration. Placement switches are accumulated so the
// adaptive machinery is verifiably exercised, not optimized away.
func BenchmarkTopologySweep(b *testing.B) {
	var scenarios []fleet.Scenario
	for _, pol := range []string{fleet.PolicyStatic, fleet.PolicyLatencyThreshold, fleet.PolicyHysteresis} {
		sc, err := fleet.TopologyDemoScenario(1, pol)
		if err != nil {
			b.Fatal(err)
		}
		scenarios = append(scenarios, sc)
	}
	var switches int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range fleet.Sweep(scenarios, 0) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			switches += o.Result.Total.Switches
		}
	}
	if switches == 0 {
		b.Fatal("adaptive policies never moved a camera")
	}
	b.ReportMetric(float64(switches)/float64(b.N), "moves/sweep")
}

// BenchmarkE15Compression measures the optional in-camera compression
// block (the §II extension) on real sensor content.
func BenchmarkE15Compression(b *testing.B) {
	r := rig.NewRig(rand.New(rand.NewSource(15)), 2, 256, 128, 0.75, 3)
	raw := vr.CaptureFrame(r.View(0))
	codec, err := compress.NewCodec(12)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := codec.Encode(raw)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(compress.Ratio(raw, enc), "ratio")
	b.SetBytes(raw.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
