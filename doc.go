// Package camsim is a from-scratch reproduction of "Exploring
// Computation-Communication Tradeoffs in Camera Systems" (Mazumdar et al.,
// IISWC 2017).
//
// The library decomposes camera applications into in-camera processing
// pipelines (internal/core) and instantiates the paper's two case studies
// end to end: an RF-harvesting face-authentication camera
// (internal/faceauth over internal/{motion,vj,nn,fixed,snnap,energy}) and
// a real-time 3D-360° VR video rig (internal/vr over
// internal/{rig,bilateral,stereo,platform}).
//
// Beyond the paper's single-camera scope, internal/fleet scales these
// models to populations of cameras contending for one shared uplink: a
// JSON-configurable, deterministic discrete-event simulator with pluggable
// contention (fair-share processor sharing or FIFO) and a worker-pool
// sweeper, surfaced as the `camsim fleet` subcommand and the
// examples/fleet-sweep program.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and cmd/camsim for the experiment driver
// that regenerates every table and figure.
package camsim
