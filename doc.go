// Package camsim is a from-scratch reproduction of "Exploring
// Computation-Communication Tradeoffs in Camera Systems" (Mazumdar et al.,
// IISWC 2017).
//
// The library decomposes camera applications into in-camera processing
// pipelines (internal/core) and instantiates the paper's two case studies
// end to end: an RF-harvesting face-authentication camera
// (internal/faceauth over internal/{motion,vj,nn,fixed,snnap,energy}) and
// a real-time 3D-360° VR video rig (internal/vr over
// internal/{rig,bilateral,stereo,platform}).
//
// Beyond the paper's single-camera scope, internal/fleet scales these
// models to populations of cameras contending for one shared uplink: a
// JSON-configurable, deterministic discrete-event simulator with pluggable
// contention (fair-share processor sharing or FIFO) and a worker-pool
// sweeper, surfaced as the `camsim fleet` subcommand and the
// examples/fleet-sweep program.
//
// # Determinism invariants
//
// Every result the repo reports is reproducible from a scenario's seed:
// the fleet simulator's goldens are byte-identical across GOMAXPROCS
// 1, 2 and 8 (the nightly matrix replays them), every seeded draw flows
// through the value-embedded splitmix64 PRNG with per-entity streams
// pinned by reference vectors, and one simulation run is one sequential
// event loop — parallelism exists only between runs, in the sweep
// worker pool. These invariants are machine-checked by fleetvet
// (internal/lint, driven by cmd/fleetvet): five analyzers reject map
// iteration leaks, wall-clock and math/rand sources, in-run
// concurrency, order-dependent float accumulation, and scenario
// sections the reflection deep copy or the JSON round trip could not
// cover. CI's lint job and the nightly matrix both run
// `go run ./cmd/fleetvet ./...` and fail on any diagnostic.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and cmd/camsim for the experiment driver
// that regenerates every table and figure.
package camsim
