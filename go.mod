module camsim

go 1.24
